package core

import (
	"testing"

	"multiscatter/internal/channel"
)

// TestRunOcclusionSweep pins the Figure 15 extension's shape: the
// single-receiver Double-decker curve is flat across wall materials
// (there is no original receiver to occlude) while Hitchhike and
// FreeRider decay, crossing below Double-decker once a wall appears.
func TestRunOcclusionSweep(t *testing.T) {
	pts := RunOcclusionSweep()
	if len(pts) != 4 {
		t.Fatalf("rows = %d, want 4 wall materials", len(pts))
	}
	if pts[0].Wall != channel.NoWall {
		t.Fatalf("first row %v, want NoWall", pts[0].Wall)
	}
	dd0 := pts[0].DoubleDeckerKbps
	for i, p := range pts {
		if p.DoubleDeckerKbps != dd0 {
			t.Errorf("%v: Double-decker moved with the wall (%v vs %v)", p.Wall, p.DoubleDeckerKbps, dd0)
		}
		if p.DoubleDeckerBER > 1e-5 {
			t.Errorf("%v: Double-decker BER %v too high", p.Wall, p.DoubleDeckerBER)
		}
		if i > 0 {
			if p.HitchhikeKbps >= pts[i-1].HitchhikeKbps {
				t.Errorf("%v: Hitchhike did not decay (%v vs %v)", p.Wall, p.HitchhikeKbps, pts[i-1].HitchhikeKbps)
			}
			if p.DoubleDeckerKbps <= p.HitchhikeKbps {
				t.Errorf("%v: Double-decker %v not above occluded Hitchhike %v", p.Wall, p.DoubleDeckerKbps, p.HitchhikeKbps)
			}
		}
		if p.FreeRiderKbps > p.HitchhikeKbps {
			t.Errorf("%v: FreeRider %v above Hitchhike %v", p.Wall, p.FreeRiderKbps, p.HitchhikeKbps)
		}
	}
}

// TestRunDoubleDeckerDecode exercises the waveform-level single-receiver
// decode: pilot-estimated H_d cancellation plus coherent H_b slicing must
// recover every tag bit at the default working point (the group
// integration gain over γ·spread DSSS symbols dwarfs the −10 dB
// per-sample backscatter SNR).
func TestRunDoubleDeckerDecode(t *testing.T) {
	ber, err := RunDoubleDeckerDecode(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ber != 0 {
		t.Errorf("waveform BER = %v, want 0 at the default working point", ber)
	}
	if _, err := RunDoubleDeckerDecode(0, 7); err == nil {
		t.Error("zero packets must error")
	}
}
