package core

import (
	"fmt"
	"math/rand"

	"multiscatter/internal/channel"
	"multiscatter/internal/dsp"
	"multiscatter/internal/overlay"
	"multiscatter/internal/phy/ble"
	"multiscatter/internal/phy/dsss"
	"multiscatter/internal/phy/ofdm"
	"multiscatter/internal/phy/zigbee"
	"multiscatter/internal/radio"
)

// Impairments describes what the channel does to a backscattered carrier
// on its way to the receiver.
type Impairments struct {
	// DelaySamples of noise prepended (packet-arrival uncertainty).
	DelaySamples int
	// CFOHz is the residual carrier-frequency offset: the tag's
	// low-power oscillator shifts the backscatter to the adjacent
	// channel only approximately, so the receiver sees the packet offset
	// by up to a few tens of kHz.
	CFOHz float64
	// SNRdB adds AWGN (0 disables).
	SNRdB float64
	// Seed for the noise.
	Seed int64
}

// Impair applies the impairments to the carrier in place: the waveform
// is delayed, rotated and noised; the stored symbol layout keeps its
// frame-relative meaning (the receiver must re-align).
func Impair(c *overlay.Carrier, imp Impairments) {
	rng := rand.New(rand.NewSource(imp.Seed + 99))
	iq := c.Waveform.IQ
	if imp.CFOHz != 0 {
		dsp.Rotate(iq, imp.CFOHz, c.Waveform.Rate, 0)
	}
	if imp.DelaySamples > 0 {
		head := make([]complex128, imp.DelaySamples, imp.DelaySamples+len(iq))
		for i := range head {
			head[i] = complex(rng.NormFloat64(), rng.NormFloat64()) * 0.01
		}
		iq = append(head, iq...)
	}
	if imp.SNRdB != 0 {
		channel.AWGN(iq, imp.SNRdB, rng)
	}
	c.Waveform.IQ = iq
}

// Receiver recovers frame alignment and center frequency for one
// protocol before overlay decoding — the processing a commodity radio's
// front end performs. The brute-force CFO search locates the shifted
// backscatter channel to within StepHz; the differential 802.11b and
// discriminator BLE demodulators tolerate that residual, while ZigBee's
// coherent OQPSK despreader and OFDM's subcarrier grid additionally rely
// on the hardware AFC / pilot tracking that commodity receivers perform
// (not modelled here) — drive those protocols with CFO-free carriers.
type Receiver struct {
	// Protocol served.
	Protocol radio.Protocol
	// SearchHz bounds the brute-force CFO search (±SearchHz); the paper
	// performs "center-frequency alignment by a brute-force search"
	// (§2.4.2 footnote). Default ±60 kHz.
	SearchHz float64
	// StepHz is the search granularity (default 5 kHz).
	StepHz float64
	// MaxDelay bounds the frame-start search in samples (default 2000).
	MaxDelay int
}

// NewReceiver returns a receiver with default search bounds.
func NewReceiver(p radio.Protocol) *Receiver {
	return &Receiver{Protocol: p, SearchHz: 60e3, StepHz: 5e3, MaxDelay: 2000}
}

// synchronize dispatches to the protocol's matched-filter sync.
func (r *Receiver) synchronize(w radio.Waveform) (int, float64) {
	switch r.Protocol {
	case radio.Protocol80211b:
		return dsss.Synchronize(w, dsss.Config{Rate: dsss.Rate1Mbps, NoScramble: true}, r.MaxDelay)
	case radio.Protocol80211n:
		return ofdm.Synchronize(w, r.MaxDelay)
	case radio.ProtocolBLE:
		return ble.Synchronize(w, ble.Config{NoWhitening: true}, r.MaxDelay)
	case radio.ProtocolZigBee:
		return zigbee.Synchronize(w, zigbee.Config{}, r.MaxDelay)
	default:
		return -1, 0
	}
}

// Recover re-aligns an impaired carrier in place: it brute-force scans
// candidate CFOs, derotates a probe copy, scores frame sync at each
// candidate, then applies the best derotation and trims the delay so the
// overlay codec can decode. It returns the estimated CFO and delay.
func (r *Receiver) Recover(c *overlay.Carrier) (cfoHz float64, delay int, err error) {
	if r.Protocol != c.Plan.Protocol {
		return 0, 0, fmt.Errorf("core: receiver for %v given %v carrier", r.Protocol, c.Plan.Protocol)
	}
	rate := c.Waveform.Rate
	// Probe: enough samples to cover the delay search plus the sync
	// reference.
	probeLen := r.MaxDelay + int(rate*300e-6)
	if probeLen > len(c.Waveform.IQ) {
		probeLen = len(c.Waveform.IQ)
	}
	bestScore := -1.0
	bestCFO, bestOff := 0.0, -1
	step := r.StepHz
	if step <= 0 {
		step = 5e3
	}
	for cand := -r.SearchHz; cand <= r.SearchHz+1; cand += step {
		probe := dsp.Clone(c.Waveform.IQ[:probeLen])
		dsp.Rotate(probe, -cand, rate, 0)
		off, score := r.synchronize(radio.Waveform{IQ: probe, Rate: rate})
		if off >= 0 && score > bestScore {
			bestScore, bestCFO, bestOff = score, cand, off
		}
	}
	if bestOff < 0 {
		return 0, 0, fmt.Errorf("core: no %v frame found within ±%.0f kHz", r.Protocol, r.SearchHz/1e3)
	}
	dsp.Rotate(c.Waveform.IQ, -bestCFO, rate, 0)
	c.Waveform.IQ = c.Waveform.IQ[bestOff:]
	return bestCFO, bestOff, nil
}
