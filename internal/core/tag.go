package core

import (
	"fmt"

	"multiscatter/internal/overlay"
	"multiscatter/internal/radio"
	"multiscatter/internal/tag"
)

// Tag is a multiscatter tag: a protocol identifier feeding per-protocol
// overlay codecs, plus the carrier-selection policy of §4.2.
type Tag struct {
	// Identifier classifies incoming excitations.
	Identifier *tag.Identifier
	// Codecs by protocol.
	Codecs map[radio.Protocol]overlay.Codec
	// Mode is the overlay operating mode (default Mode1).
	Mode overlay.Mode
	// Supported limits the protocols the tag reacts to; empty means all
	// four (a single-protocol comparison tag lists exactly one).
	Supported map[radio.Protocol]bool
}

// TagConfig configures NewTag.
type TagConfig struct {
	// Identifier selects the identification operating point (default:
	// 2.5 Msps, quantized, extended window, ordered matching — the
	// paper's recommended configuration).
	Identifier tag.IdentifierConfig
	// Mode is the overlay mode (default Mode1).
	Mode overlay.Mode
	// Only restricts the tag to the given protocols (a single-protocol
	// baseline tag names one).
	Only []radio.Protocol
}

// NewTag builds a tag.
func NewTag(cfg TagConfig) (*Tag, error) {
	idCfg := cfg.Identifier
	if idCfg.ADCRate == 0 {
		idCfg = tag.IdentifierConfig{
			ADCRate:   2.5e6,
			Quantized: true,
			Extended:  true,
			Ordered:   true,
		}
	}
	id, err := tag.NewIdentifier(idCfg)
	if err != nil {
		return nil, err
	}
	t := &Tag{
		Identifier: id,
		Codecs:     make(map[radio.Protocol]overlay.Codec, 4),
		Mode:       cfg.Mode,
		Supported:  map[radio.Protocol]bool{},
	}
	if t.Mode == 0 {
		t.Mode = overlay.Mode1
	}
	for _, p := range radio.Protocols {
		c, err := overlay.NewCodec(p)
		if err != nil {
			return nil, err
		}
		t.Codecs[p] = c
	}
	if len(cfg.Only) == 0 {
		for _, p := range radio.Protocols {
			t.Supported[p] = true
		}
	} else {
		for _, p := range cfg.Only {
			t.Supported[p] = true
		}
	}
	return t, nil
}

// CanUse reports whether the tag reacts to protocol p.
func (t *Tag) CanUse(p radio.Protocol) bool { return t.Supported[p] }

// Identify classifies an excitation waveform.
func (t *Tag) Identify(iq []complex128, rate float64) (radio.Protocol, float64) {
	return t.Identifier.Identify(iq, rate, true)
}

// Backscatter runs the full pipeline on one overlay carrier: identify
// the protocol from the waveform, and if it is supported, modulate the
// tag bits onto it. It returns the identified protocol and whether the
// tag modulated.
func (t *Tag) Backscatter(c *overlay.Carrier, tagBits []byte) (radio.Protocol, bool, error) {
	p, _ := t.Identify(c.Waveform.IQ, c.Waveform.Rate)
	if !p.Valid() {
		return p, false, nil
	}
	if p != c.Plan.Protocol {
		return p, false, fmt.Errorf("core: identified %v but carrier is %v", p, c.Plan.Protocol)
	}
	if !t.CanUse(p) {
		return p, false, nil
	}
	t.Codecs[p].ApplyTag(c, tagBits)
	return p, true, nil
}

// SelectCarrier implements the intelligent carrier pick of Figure 18b:
// given the measured backscatter goodput of each available excitation,
// it returns the protocol with the highest goodput meeting requiredKbps,
// or the best-effort maximum if none meets it. ok reports whether the
// requirement is met.
func SelectCarrier(goodputKbps map[radio.Protocol]float64, requiredKbps float64) (radio.Protocol, bool) {
	best := radio.ProtocolUnknown
	var bestRate float64
	for p, r := range goodputKbps {
		if r > bestRate || (r == bestRate && best != radio.ProtocolUnknown && p < best) {
			best, bestRate = p, r
		}
	}
	return best, bestRate >= requiredKbps
}
