// Package multiscatter is a software-defined reproduction of
// "Multiprotocol Backscatter for Personal IoT Sensors" (Gong, Yuan, Wang,
// Zhao — CoNEXT 2020): a backscatter tag that identifies multiple 2.4 GHz
// excitation protocols (802.11b, 802.11n, BLE, ZigBee) in an
// ultra-low-power way and conveys tag data on top of productive carriers
// with overlay modulation, decodable by a single commodity radio.
//
// The package is the public face of the simulator. It exposes:
//
//   - the four baseband PHYs and the overlay codecs (Build / ApplyTag /
//     Decode) for end-to-end single-receiver experiments on real
//     waveforms;
//   - the tag: analog front end (clamped rectifier + ADC), template
//     matching identification (blind and ordered), and the carrier
//     selection policy;
//   - calibrated link, channel, energy and FPGA-cost models;
//   - experiment drivers that regenerate every table and figure of the
//     paper's evaluation (see bench_test.go and cmd/msbench).
//
// Quickstart:
//
//	tag, _ := multiscatter.NewTag(multiscatter.TagConfig{})
//	plan, _ := multiscatter.NewPlan(multiscatter.ProtocolBLE, multiscatter.Mode1, productiveBits)
//	codec := tag.Codecs[multiscatter.ProtocolBLE]
//	carrier, _ := codec.Build(plan)
//	tag.Backscatter(carrier, tagBits)       // identify + overlay-modulate
//	result, _ := codec.Decode(carrier)      // single commodity receiver
package multiscatter

import (
	"time"

	"multiscatter/internal/channel"
	"multiscatter/internal/core"
	"multiscatter/internal/fleet"
	"multiscatter/internal/overlay"
	"multiscatter/internal/radio"
	"multiscatter/internal/sim"
	"multiscatter/internal/stats"
	"multiscatter/internal/tag"
)

// Protocol identifies an excitation protocol.
type Protocol = radio.Protocol

// The four excitation protocols, in ordered-matching order.
const (
	ProtocolUnknown = radio.ProtocolUnknown
	ProtocolZigBee  = radio.ProtocolZigBee
	ProtocolBLE     = radio.ProtocolBLE
	Protocol80211b  = radio.Protocol80211b
	Protocol80211n  = radio.Protocol80211n
)

// Protocols lists the four identifiable protocols.
var Protocols = radio.Protocols

// Waveform is a complex-baseband signal with its sample rate.
type Waveform = radio.Waveform

// Packet is a protocol data unit at the bit level.
type Packet = radio.Packet

// Mode selects an overlay operating point (Table 6).
type Mode = overlay.Mode

// Overlay modes.
const (
	Mode1 = overlay.Mode1
	Mode2 = overlay.Mode2
	Mode3 = overlay.Mode3
)

// Plan fixes the overlay sequence structure of one carrier packet.
type Plan = overlay.Plan

// Carrier is a generated overlay carrier waveform plus its layout.
type Carrier = overlay.Carrier

// Codec generates, tag-modulates and decodes overlay carriers.
type Codec = overlay.Codec

// Result is the outcome of single-receiver overlay decoding.
type Result = overlay.Result

// Throughput is a productive/tag rate pair in kbps.
type Throughput = overlay.Throughput

// Traffic describes a carrier's packet pattern.
type Traffic = overlay.Traffic

// NewPlan builds an overlay plan carrying the given productive bits.
func NewPlan(p Protocol, m Mode, productive []byte) (*Plan, error) {
	return overlay.NewPlan(p, m, productive)
}

// NewCodec returns the overlay codec for a protocol.
func NewCodec(p Protocol) (Codec, error) { return overlay.NewCodec(p) }

// DefaultTraffic returns the paper-calibrated carrier pattern for a
// protocol.
func DefaultTraffic(p Protocol) Traffic { return overlay.DefaultTraffic(p) }

// Tag is a multiscatter tag: identifier + overlay codecs + policy.
type Tag = core.Tag

// TagConfig configures NewTag.
type TagConfig = core.TagConfig

// IdentifierConfig selects an identification operating point.
type IdentifierConfig = tag.IdentifierConfig

// NewTag builds a tag (default: 2.5 Msps quantized ordered matching with
// the 40 µs extended window — the paper's recommended configuration).
func NewTag(cfg TagConfig) (*Tag, error) { return core.NewTag(cfg) }

// SelectCarrier implements the intelligent carrier pick of Figure 18b.
func SelectCarrier(goodputKbps map[Protocol]float64, requiredKbps float64) (Protocol, bool) {
	return core.SelectCarrier(goodputKbps, requiredKbps)
}

// ChannelModel is a log-distance path-loss channel.
type ChannelModel = channel.Model

// NewLoSChannel returns the line-of-sight hallway channel of Figure 13.
func NewLoSChannel() *ChannelModel { return channel.NewLoS() }

// NewNLoSChannel returns the non-line-of-sight office channel of
// Figure 14.
func NewNLoSChannel() *ChannelModel { return channel.NewNLoS() }

// ChannelCoeff is a complex channel coefficient H = |h|·e^{jφ}; its
// Magnitude projection is the legacy PathLossDB/RSSI surface (see
// docs/CHANNELS.md for the channel/baseline contract).
type ChannelCoeff = channel.Coeff

// ChannelEstimate is a pilot-based least-squares channel estimate.
type ChannelEstimate = channel.Estimate

// ChannelEstimator estimates complex coefficients from pilot symbols
// and prices residual phase drift over a tracking horizon.
type ChannelEstimator = channel.Estimator

// PhaseDrift is a deterministic residual phase trajectory
// φ(t) = φ₀ + 2π·f·t drawn from the StreamChannelPhase RNG stream.
type PhaseDrift = channel.PhaseDrift

// Link is one protocol's calibrated end-to-end backscatter link.
type Link = core.Link

// NewLink builds a link for protocol p over channel m.
func NewLink(p Protocol, m *ChannelModel) *Link { return core.NewLink(p, m) }

// Confusion is an identification confusion matrix.
type Confusion = stats.Confusion

// Series is a labelled experiment curve.
type Series = stats.Series

// IdentifyOptions configures an identification-accuracy experiment.
type IdentifyOptions = core.IdentifyOptions

// RunIdentification collects traces, tunes thresholds (the paper's
// brute-force search) and returns the confusion matrix plus thresholds.
func RunIdentification(o IdentifyOptions) (*Confusion, map[Protocol]float64, error) {
	return core.RunIdentification(o)
}

// RangePoint is one distance sample of Figures 13/14.
type RangePoint = core.RangePoint

// RangeSweep computes RSSI/BER/throughput across distances.
func RangeSweep(p Protocol, m *ChannelModel, maxD, step float64) []RangePoint {
	return core.RangeSweep(p, m, maxD, step)
}

// TradeoffResult is one bar group of Figure 12.
type TradeoffResult = core.TradeoffResult

// RunTradeoffs computes Figure 12.
func RunTradeoffs() []TradeoffResult { return core.RunTradeoffs() }

// OcclusionResult is one bar of Figure 15.
type OcclusionResult = core.OcclusionResult

// RunOcclusion computes Figure 15.
func RunOcclusion() []OcclusionResult { return core.RunOcclusion() }

// OcclusionSweepPoint is one wall material of the extended Figure 15
// sweep: the single-receiver Double-decker curve against the
// dual-receiver baselines.
type OcclusionSweepPoint = core.OcclusionSweepPoint

// RunOcclusionSweep extends Figure 15 across wall materials.
func RunOcclusionSweep() []OcclusionSweepPoint { return core.RunOcclusionSweep() }

// RunDoubleDeckerDecode Monte-Carlos the waveform-level single-receiver
// superposition decode (arXiv 2408.16280) and returns the measured
// tag-bit error rate.
func RunDoubleDeckerDecode(packets int, seed int64) (float64, error) {
	return core.RunDoubleDeckerDecode(packets, seed)
}

// CollisionResult is one protocol's throughput under collisions (Fig 16).
type CollisionResult = core.CollisionResult

// RunCollisions computes Figure 16's time- and frequency-domain
// collision scenarios.
func RunCollisions(seed int64) (timeDomain, freqDomain []CollisionResult) {
	return core.RunCollisions(seed)
}

// DiversityResult summarizes Figure 18a.
type DiversityResult = core.DiversityResult

// RunDiversity computes Figure 18a.
func RunDiversity() DiversityResult { return core.RunDiversity() }

// CarrierPickResult summarizes Figure 18b.
type CarrierPickResult = core.CarrierPickResult

// RunCarrierPick computes Figure 18b.
func RunCarrierPick() CarrierPickResult { return core.RunCarrierPick() }

// RefModResult is one bar of Figure 17.
type RefModResult = core.RefModResult

// RunRefModulation computes Figure 17 over Monte Carlo carriers.
func RunRefModulation(snrDB float64, packets int, seed int64) ([]RefModResult, error) {
	return core.RunRefModulation(snrDB, packets, seed)
}

// BaselineFailurePoint is one bar of Figure 9a.
type BaselineFailurePoint = core.BaselineFailurePoint

// RunBaselineFailure computes Figure 9.
func RunBaselineFailure() ([]BaselineFailurePoint, *Series) {
	return core.RunBaselineFailure()
}

// BraceletGoodputKbps is the on-body monitoring requirement of §4.2.2.
const BraceletGoodputKbps = core.BraceletGoodputKbps

// Impairments describes channel effects applied to a backscattered
// carrier (delay, residual CFO, noise).
type Impairments = core.Impairments

// Impair applies channel impairments to a carrier in place.
func Impair(c *Carrier, imp Impairments) { core.Impair(c, imp) }

// Receiver re-aligns impaired carriers (frame sync + the paper's
// brute-force center-frequency search) before overlay decoding.
type Receiver = core.Receiver

// NewReceiver returns a receiver with default search bounds.
func NewReceiver(p Protocol) *Receiver { return core.NewReceiver(p) }

// UniversalFrame is a protocol-agnostic reception result.
type UniversalFrame = core.UniversalFrame

// UniversalReceive tries every protocol's receive chain on an unaligned
// capture — a software monitor radio for the 2.4 GHz band.
func UniversalReceive(w Waveform, maxOffset int) (*UniversalFrame, error) {
	return core.UniversalReceive(w, maxOffset)
}

// ChooseMode picks the overlay mode whose tag rate meets a requirement
// over the given link (application-driven κ selection).
func ChooseMode(l *Link, d float64, tr Traffic, requiredTagKbps float64) (Mode, bool) {
	return core.ChooseMode(l, d, tr, requiredTagKbps)
}

// ChooseGamma picks the smallest tag spreading factor meeting a BER
// target at the given per-symbol decision SNR — the paper's empirical γ
// selection made explicit.
func ChooseGamma(p Protocol, snr, targetBER float64, maxGamma int) (int, bool) {
	return overlay.ChooseGamma(p, snr, targetBER, maxGamma)
}

// NewCustomPlan builds an overlay plan with explicit γ and κ instead of
// the Table 6 defaults.
func NewCustomPlan(p Protocol, gamma, kappa int, productive []byte) (*Plan, error) {
	return overlay.NewCustomPlan(p, gamma, kappa, productive)
}

// FleetConfig describes a multi-tag deployment: N tags on a floor-plan
// grid × M excitation sources × K receivers, executed on a deterministic
// sharded worker pool with cross-tag collision arbitration.
type FleetConfig = fleet.Config

// FleetPhaseConfig enables the phase-aware complex channel for a fleet
// run (FleetConfig.Phase): per-link drift draws from StreamChannelPhase
// and a coherent-receiver PER adjustment, with RSSI kept on the
// magnitude surface (see docs/CHANNELS.md).
type FleetPhaseConfig = fleet.PhaseConfig

// FleetBaseline selects the decoding architecture a fleet run models.
type FleetBaseline = fleet.BaselineSystem

// Fleet baseline systems.
const (
	// FleetBaselineMultiscatter is the default multiscatter receiver.
	FleetBaselineMultiscatter = fleet.BaselineMultiscatter
	// FleetBaselineDoubleDecker models single-receiver superposition
	// decoding (arXiv 2408.16280): auto-enables the phase-aware channel,
	// scales tag capacity by the γ·spread and pilot budget, and adds the
	// residual self-interference penalty.
	FleetBaselineDoubleDecker = fleet.BaselineDoubleDecker
)

// FleetTag places and configures one tag of a fleet.
type FleetTag = fleet.TagSpec

// FleetReceiver places one commodity receiver on the floor plan.
type FleetReceiver = fleet.ReceiverSpec

// FleetResult is the aggregated outcome of one fleet run: per-tag and
// per-protocol accounting, fleet-throughput timeline, Jain fairness, and
// link-cache statistics. Identical byte-for-byte for a fixed seed,
// regardless of worker-pool size or GOMAXPROCS.
type FleetResult = fleet.Result

// FleetTagResult is one tag's aggregated outcome within a FleetResult.
type FleetTagResult = fleet.TagResult

// EnergyConfig enables harvesting-limited operation for simulated tags.
type EnergyConfig = sim.EnergyConfig

// RunFleet executes a fleet deployment.
func RunFleet(cfg FleetConfig) (*FleetResult, error) { return fleet.Run(cfg) }

// PlaceGrid places n fleet tags on a w×h-metre floor plan in a
// near-square grid.
func PlaceGrid(n int, w, h float64) []FleetTag { return fleet.PlaceGrid(n, w, h) }

// PlaceReceivers spreads k receivers over a w×h floor plan.
func PlaceReceivers(k int, w, h float64) []FleetReceiver { return fleet.PlaceReceivers(k, w, h) }

// JointOFDMPoint is one cell of the waveform-level concurrent-OFDM
// experiment (fig16 concurrency): k tags on one 802.11n frame at one SNR.
type JointOFDMPoint = core.JointOFDMPoint

// RunJointOFDM sweeps concurrent-OFDM joint decoding over fleet sizes
// and SNRs at the waveform level.
func RunJointOFDM(snrsDB []float64, packets int, seed int64) ([]JointOFDMPoint, error) {
	return core.RunJointOFDM(snrsDB, packets, seed)
}

// ConcurrencyPoint is one point of the fig16 concurrency-vs-throughput
// curve at the fleet level.
type ConcurrencyPoint = fleet.ConcurrencyPoint

// ConcurrencySweep measures aggregate fleet throughput and Jain
// fairness for 1..maxN co-located 802.11n tags, with concurrent-OFDM
// joint decoding against the capture-only baseline.
func ConcurrencySweep(maxN int, span time.Duration, seed int64) ([]ConcurrencyPoint, error) {
	return fleet.ConcurrencySweep(maxN, span, seed)
}
