// Quickstart: the minimal multiscatter pipeline. A BLE excitation carries
// productive data in overlay mode 1; the tag identifies the protocol and
// modulates sensor bits on top; a single commodity BLE receiver decodes
// both streams from the same packet.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"multiscatter"
	"multiscatter/internal/channel"
)

func main() {
	// Build a multiscatter tag with the paper's recommended operating
	// point: 2.5 Msps quantized ordered matching, 40 µs window.
	tag, err := multiscatter.NewTag(multiscatter.TagConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// The excitation device spreads its own (productive) data into
	// modulatable sequences — one bit per sequence in mode 1.
	productive := []byte{1, 0, 1, 1, 0, 0, 1, 0}
	plan, err := multiscatter.NewPlan(multiscatter.ProtocolBLE, multiscatter.Mode1, productive)
	if err != nil {
		log.Fatal(err)
	}
	codec := tag.Codecs[multiscatter.ProtocolBLE]
	carrier, err := codec.Build(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("excitation: BLE carrier, %d sequences (κ=%d, γ=%d), %d tag-bit capacity\n",
		plan.Sequences, plan.Kappa, plan.Gamma, plan.TagCapacity())

	// The tag's sensor reading.
	sensor := []byte{1, 1, 0, 1, 0, 0, 1, 0}[:plan.TagCapacity()]

	// The tag identifies the excitation from its envelope, then overlays
	// the sensor bits by FSK-shifting modulatable units.
	proto, modulated, err := tag.Backscatter(carrier, sensor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tag:        identified %v, modulated=%v\n", proto, modulated)

	// 20 dB of channel noise on the way to the receiver.
	channel.AWGN(carrier.Waveform.IQ, 20, rand.New(rand.NewSource(7)))

	// One commodity radio decodes BOTH the productive data (reference
	// units) and the tag data (unit comparisons) from the same packet.
	result, err := codec.Decode(carrier)
	if err != nil {
		log.Fatal(err)
	}
	pe, te := result.BitErrors(plan, sensor)
	fmt.Printf("receiver:   productive %v (errors %d)\n", result.Productive, pe)
	fmt.Printf("            tag        %v (errors %d)\n", result.Tag, te)
}
