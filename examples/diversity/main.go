// Diversity: the paper's Figure 18a scenario. 802.11b and 802.11n
// excitations alternate in 50% duty-cycled windows. A multiscatter tag
// identifies whichever carrier is on and keeps transmitting; an
// 802.11n-only tag idles whenever its protocol is absent. The example
// walks a timeline second by second and prints each tag's activity and
// cumulative throughput.
package main

import (
	"fmt"
	"log"
	"time"

	"multiscatter"
)

func main() {
	los := multiscatter.NewLoSChannel()
	linkB := multiscatter.NewLink(multiscatter.Protocol80211b, los)
	linkN := multiscatter.NewLink(multiscatter.Protocol80211n, los)
	trB := multiscatter.DefaultTraffic(multiscatter.Protocol80211b)
	trN := multiscatter.DefaultTraffic(multiscatter.Protocol80211n)
	const d = 2.0 // metres from tag to receiver

	rateB := linkB.Throughput(d, multiscatter.Mode1, trB).TagKbps
	rateN := linkN.Throughput(d, multiscatter.Mode1, trN).TagKbps

	// Verify both tags exist and identify correctly (the multiscatter
	// tag supports all four protocols; the single-protocol tag only
	// 802.11n).
	if _, err := multiscatter.NewTag(multiscatter.TagConfig{}); err != nil {
		log.Fatal(err)
	}
	single, err := multiscatter.NewTag(multiscatter.TagConfig{
		Only: []multiscatter.Protocol{multiscatter.Protocol80211n},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("t(s)  carrier   multiscatter      802.11n-only")
	var multiKb, singleKb float64
	const period = 10 * time.Second
	for t := 0 * time.Second; t < period; t += time.Second {
		// 802.11b on for the first half of each period, 802.11n the
		// second half.
		carrier := multiscatter.Protocol80211b
		rate := rateB
		if t >= period/2 {
			carrier = multiscatter.Protocol80211n
			rate = rateN
		}
		multiKb += rate
		act := "tx " + fmt.Sprintf("%5.1f kbps", rate)
		sact := "idle"
		if single.CanUse(carrier) {
			singleKb += rate
			sact = act
		}
		fmt.Printf("%3d   %-8v  %-16s  %s\n", int(t.Seconds()), carrier, act, sact)
	}
	fmt.Printf("\ntotals over %v: multiscatter %.0f kb, single-protocol %.0f kb (%.1f× gain)\n",
		period, multiKb, singleKb, multiKb/singleKb)
	fmt.Println("the multiscatter tag is busy 100% of the time; the single-protocol tag idles 50%")
}
