// Bracelet: the paper's Figure 18b scenario. A smart bracelet must
// deliver ≥6.3 kbps of on-body monitoring goodput. The environment has
// abundant 802.11n excitation but only spotty 802.11b. The multiscatter
// tag measures each excitation's achievable backscatter goodput and
// intelligently picks the best carrier; an 802.11b-only tag cannot meet
// the requirement.
package main

import (
	"fmt"

	"multiscatter"
)

func main() {
	los := multiscatter.NewLoSChannel()
	const d = 2.0

	// Abundant 802.11n: 200 pkt/s. Spotty 802.11b: 8 pkt/s.
	trN := multiscatter.DefaultTraffic(multiscatter.Protocol80211n)
	trN.MaxPacketRate = 200
	trB := multiscatter.DefaultTraffic(multiscatter.Protocol80211b)
	trB.MaxPacketRate = 8

	goodputs := map[multiscatter.Protocol]float64{
		multiscatter.Protocol80211n: multiscatter.NewLink(multiscatter.Protocol80211n, los).
			Throughput(d, multiscatter.Mode1, trN).TagKbps,
		multiscatter.Protocol80211b: multiscatter.NewLink(multiscatter.Protocol80211b, los).
			Throughput(d, multiscatter.Mode1, trB).TagKbps,
	}

	fmt.Printf("requirement: %.1f kbps on-body monitoring goodput\n\n", multiscatter.BraceletGoodputKbps)
	fmt.Println("available excitations:")
	for p, g := range goodputs {
		fmt.Printf("  %-8v %.1f kbps achievable\n", p, g)
	}

	picked, ok := multiscatter.SelectCarrier(goodputs, multiscatter.BraceletGoodputKbps)
	fmt.Printf("\nmultiscatter tag picks %v → %.1f kbps (requirement met: %v)\n",
		picked, goodputs[picked], ok)

	bOnly := goodputs[multiscatter.Protocol80211b]
	fmt.Printf("802.11b-only tag is stuck at %.1f kbps (requirement met: %v)\n",
		bOnly, bOnly >= multiscatter.BraceletGoodputKbps)
}
