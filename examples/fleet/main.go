// Fleet: a 50-tag office deployment — the paper's personal-IoT vision at
// building scale. Fifty tags on a 30×50 m floor ride the office
// scenario's excitation (dense 802.11n, legacy 802.11b, busy BLE
// advertisers) toward two commodity receivers. The example contrasts the
// aggregate fleet throughput with per-tag fairness: tags near a receiver
// capture cross-tag collisions and deliver at link rate, while far tags
// lose both the capture contest and downlink margin, which Jain's index
// quantifies in one number.
package main

import (
	"fmt"
	"log"
	"time"

	"multiscatter"
	"multiscatter/internal/excite"
	"multiscatter/internal/sim"
)

func main() {
	sc, err := excite.FindScenario("office")
	if err != nil {
		log.Fatal(err)
	}

	const floorW, floorH = 30.0, 50.0
	cfg := multiscatter.FleetConfig{
		Sources:   sc.Sources,
		Tags:      multiscatter.PlaceGrid(50, floorW, floorH),
		Receivers: multiscatter.PlaceReceivers(2, floorW, floorH),
		Span:      10 * time.Second,
		Seed:      7,
	}

	res, err := multiscatter.RunFleet(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("office floor %gx%g m: %d tags, %d receivers, %v span\n",
		floorW, floorH, res.NumTags, res.NumReceivers, res.Span)
	fmt.Printf("excitation: %d packets (%d collided on air)\n\n",
		res.Events, res.ExciteCollided)

	// Aggregate view: what the building's dashboards would report.
	fmt.Printf("fleet throughput: %.1f kbps aggregate, %.3f kbps mean per tag\n",
		res.FleetTagKbps, res.MeanTagKbps)
	fmt.Printf("Jain fairness:    %.3f  (1.0 = perfectly even, %.3f = one tag hogs all)\n\n",
		res.Fairness, 1.0/float64(res.NumTags))

	// Per-tag view: fairness is a location story. Bucket tags by distance
	// to their receiver and show how rate falls off.
	type band struct {
		label    string
		min, max float64
		tags     int
		kbps     float64
		captured int
		crossed  int
	}
	bands := []band{
		{label: "  <5 m", min: 0, max: 5},
		{label: " 5-10 m", min: 5, max: 10},
		{label: "10-15 m", min: 10, max: 15},
		{label: " >15 m", min: 15, max: 1e9},
	}
	for _, t := range res.Tags {
		for i := range bands {
			if t.DistanceM >= bands[i].min && t.DistanceM < bands[i].max {
				bands[i].tags++
				bands[i].kbps += t.TagKbps
				bands[i].captured += t.Outcomes[sim.Delivered]
				bands[i].crossed += t.Outcomes[sim.CrossCollided]
			}
		}
	}
	fmt.Println("distance   tags   mean kbps   delivered   cross-collided")
	for _, bd := range bands {
		if bd.tags == 0 {
			continue
		}
		fmt.Printf("%s %6d %11.3f %11d %16d\n",
			bd.label, bd.tags, bd.kbps/float64(bd.tags), bd.captured, bd.crossed)
	}

	fmt.Println("\ntop tags by rate:")
	for _, t := range res.TopTags(3) {
		fmt.Printf("  tag %2d at (%4.1f, %4.1f) — %.1f m from rx %d: %.2f kbps\n",
			t.ID, t.X, t.Y, t.DistanceM, t.Receiver, t.TagKbps)
	}
	fmt.Printf("\ntimeline: %s\n", timelineNote(res))
}

// timelineNote compresses the bucket timeline into peak/mean figures.
func timelineNote(res *multiscatter.FleetResult) string {
	var peak, sum float64
	for _, v := range res.Buckets {
		sum += v
		if v > peak {
			peak = v
		}
	}
	return fmt.Sprintf("%d buckets of %v, mean %.1f kbps, peak %.1f kbps",
		len(res.Buckets), res.BucketDur, sum/float64(len(res.Buckets)), peak)
}
