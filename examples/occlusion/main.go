// Occlusion: the paper's Figure 15 scenario. A drywall occludes the
// ORIGINAL channel (excitation → original receiver). Two-receiver systems
// (Hitchhike, FreeRider) must decode the original packet to XOR-recover
// tag data, so they collapse; multiscatter's overlay modulation compares
// reference and modulatable units inside the SAME backscattered packet,
// so the wall does not matter.
//
// The example also demonstrates the mechanism at waveform level: it
// builds an 802.11b overlay carrier, modulates tag data, and decodes it
// without ever touching an original-channel packet.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"multiscatter"
	"multiscatter/internal/channel"
)

func main() {
	fmt.Println("Figure 15 — tag throughput with drywall on the original channel")
	for _, r := range multiscatter.RunOcclusion() {
		bar := ""
		for i := 0; i < int(r.TagKbps/4); i++ {
			bar += "#"
		}
		fmt.Printf("  %-22s %7.1f kbps %s\n", r.System, r.TagKbps, bar)
	}

	fmt.Println("\nmechanism: single-packet decoding on an 802.11b overlay carrier")
	productive := []byte{1, 0, 1, 1}
	plan, err := multiscatter.NewPlan(multiscatter.Protocol80211b, multiscatter.Mode1, productive)
	if err != nil {
		log.Fatal(err)
	}
	codec, err := multiscatter.NewCodec(multiscatter.Protocol80211b)
	if err != nil {
		log.Fatal(err)
	}
	carrier, err := codec.Build(plan)
	if err != nil {
		log.Fatal(err)
	}
	tagBits := []byte{1, 0, 0, 1}
	codec.ApplyTag(carrier, tagBits)
	// The backscatter channel is clear; the (hypothetical) original
	// channel could be behind any wall — overlay decoding never needs it.
	channel.AWGN(carrier.Waveform.IQ, 15, rand.New(rand.NewSource(3)))
	res, err := codec.Decode(carrier)
	if err != nil {
		log.Fatal(err)
	}
	pe, te := res.BitErrors(plan, tagBits)
	fmt.Printf("  decoded productive %v (errors %d), tag %v (errors %d)\n",
		res.Productive, pe, res.Tag, te)
	fmt.Println("  → both streams recovered from one packet on one receiver")
}
