// Harvest: energy-limited multiscatter operation (§3's power analysis in
// motion). A solar-harvesting tag rides dense 802.11n excitation through
// a day profile — bright outdoor light, office light, darkness — cycling
// its 0.01 F storage capacitor between 4.1 V and 2.6 V. The example
// prints each phase's delivery statistics and shows how the paper's
// Table 4 exchange-time arithmetic emerges from the event simulation.
package main

import (
	"fmt"
	"log"
	"time"

	"multiscatter/internal/energy"
	"multiscatter/internal/excite"
	"multiscatter/internal/radio"
	"multiscatter/internal/sim"
)

func main() {
	wifi := excite.NewWiFi11nSource()
	wifi.PacketRate = 500

	phases := []struct {
		name string
		lux  float64
	}{
		{"outdoor (1.04e5 lux)", 1.04e5},
		{"indoor (500 lux)", 500},
		{"darkness", 0.001},
	}

	fmt.Println("phase                  packets  delivered   asleep   tag kbps  rounds")
	for i, ph := range phases {
		res, err := sim.Run(sim.Config{
			Sources: []excite.Source{wifi},
			Span:    15 * time.Second,
			Seed:    int64(i + 1),
			Energy:  &sim.EnergyConfig{Lux: ph.lux, StartCharged: true},
		})
		if err != nil {
			log.Fatal(err)
		}
		s := res.PerProtocol[radio.Protocol80211n]
		fmt.Printf("%-22s %8d %10d %8d %10.2f %7d\n",
			ph.name, s.Packets, s.Outcomes[sim.Delivered],
			s.Outcomes[sim.TagAsleep], res.TagKbps, res.EnergyRounds)
	}

	// The static Table 4 arithmetic for comparison.
	fmt.Println("\nTable 4 arithmetic (50 mJ rounds at 279.5 mW):")
	panel := energy.NewMP337()
	fmt.Printf("  one round powers the tag for %.2f s\n", energy.ActiveSecondsPerRound(0.2795))
	fmt.Printf("  recharging takes %.3g s indoors, %.3g s outdoors\n",
		panel.HarvestSeconds(energy.IndoorLux), panel.HarvestSeconds(energy.OutdoorLux))
	for _, r := range energy.ExchangeTable(0.2795) {
		fmt.Printf("  %-8v %6.1f pkts/round → one exchange every %8.3gs indoor / %8.3gs outdoor\n",
			r.Protocol, r.PacketsPerRound, r.IndoorSeconds, r.OutdoorSeconds)
	}
}
