package multiscatter_test

import (
	"testing"
	"time"

	"multiscatter"
	"multiscatter/internal/excite"
)

// TestPublicQuickstart exercises the README quickstart path end to end
// through the public API only.
func TestPublicQuickstart(t *testing.T) {
	tag, err := multiscatter.NewTag(multiscatter.TagConfig{})
	if err != nil {
		t.Fatal(err)
	}
	productive := []byte{1, 0, 1, 1}
	tagBits := []byte{0, 1, 1, 0}
	plan, err := multiscatter.NewPlan(multiscatter.ProtocolBLE, multiscatter.Mode1, productive)
	if err != nil {
		t.Fatal(err)
	}
	codec := tag.Codecs[multiscatter.ProtocolBLE]
	carrier, err := codec.Build(plan)
	if err != nil {
		t.Fatal(err)
	}
	p, modulated, err := tag.Backscatter(carrier, tagBits)
	if err != nil {
		t.Fatal(err)
	}
	if p != multiscatter.ProtocolBLE || !modulated {
		t.Fatalf("identified %v, modulated %v", p, modulated)
	}
	res, err := codec.Decode(carrier)
	if err != nil {
		t.Fatal(err)
	}
	pe, te := res.BitErrors(plan, tagBits)
	if pe != 0 || te != 0 {
		t.Fatalf("errors: productive %d, tag %d", pe, te)
	}
}

func TestPublicLinkAPI(t *testing.T) {
	link := multiscatter.NewLink(multiscatter.Protocol80211b, multiscatter.NewLoSChannel())
	if r := link.MaxRange(1, 40); r < 20 {
		t.Fatalf("LoS 802.11b range = %v", r)
	}
	pts := multiscatter.RangeSweep(multiscatter.ProtocolBLE, multiscatter.NewNLoSChannel(), 20, 2)
	if len(pts) != 10 {
		t.Fatalf("sweep points = %d", len(pts))
	}
}

func TestPublicExperimentSurface(t *testing.T) {
	if got := len(multiscatter.RunTradeoffs()); got != 12 {
		t.Fatalf("tradeoff rows = %d", got)
	}
	if got := len(multiscatter.RunOcclusion()); got != 5 {
		t.Fatalf("occlusion rows = %d", got)
	}
	sweep := multiscatter.RunOcclusionSweep()
	if len(sweep) != 4 || sweep[0].DoubleDeckerKbps != sweep[3].DoubleDeckerKbps {
		t.Fatalf("occlusion sweep wrong shape: %+v", sweep)
	}
	if ber, err := multiscatter.RunDoubleDeckerDecode(1, 1); err != nil || ber != 0 {
		t.Fatalf("waveform decode: ber %v err %v", ber, err)
	}
	res := multiscatter.RunCarrierPick()
	if !res.MeetsTarget {
		t.Fatal("carrier pick should meet the bracelet target")
	}
	div := multiscatter.RunDiversity()
	if div.MultiKbps <= div.SingleKbps {
		t.Fatal("diversity gain missing")
	}
	if multiscatter.BraceletGoodputKbps != 6.3 {
		t.Fatal("bracelet constant")
	}
}

func TestPublicReceiverAPI(t *testing.T) {
	codec, err := multiscatter.NewCodec(multiscatter.ProtocolBLE)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := multiscatter.NewPlan(multiscatter.ProtocolBLE, multiscatter.Mode1, []byte{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	carrier, err := codec.Build(plan)
	if err != nil {
		t.Fatal(err)
	}
	codec.ApplyTag(carrier, []byte{1, 1})
	multiscatter.Impair(carrier, multiscatter.Impairments{DelaySamples: 60, SNRdB: 20, Seed: 3})
	rx := multiscatter.NewReceiver(multiscatter.ProtocolBLE)
	rx.SearchHz = 0
	if _, delay, err := rx.Recover(carrier); err != nil || delay != 60 {
		t.Fatalf("recover: delay=%d err=%v", delay, err)
	}
	res, err := codec.Decode(carrier)
	if err != nil {
		t.Fatal(err)
	}
	if pe, te := res.BitErrors(plan, []byte{1, 1}); pe != 0 || te != 0 {
		t.Fatalf("errors %d/%d", pe, te)
	}
}

func TestPublicPolicyAPI(t *testing.T) {
	link := multiscatter.NewLink(multiscatter.Protocol80211b, multiscatter.NewLoSChannel())
	tr := multiscatter.DefaultTraffic(multiscatter.Protocol80211b)
	if m, ok := multiscatter.ChooseMode(link, 2, tr, 10); !ok || m != multiscatter.Mode1 {
		t.Fatalf("ChooseMode = %v %v", m, ok)
	}
	if g, ok := multiscatter.ChooseGamma(multiscatter.ProtocolBLE, 100, 0.1, 8); !ok || g < 3 {
		t.Fatalf("ChooseGamma = %d %v", g, ok)
	}
	plan, err := multiscatter.NewCustomPlan(multiscatter.Protocol80211b, 2, 8, []byte{1})
	if err != nil || plan.Gamma != 2 {
		t.Fatalf("NewCustomPlan: %+v %v", plan, err)
	}
}

func TestPublicFleetAPI(t *testing.T) {
	tags := multiscatter.PlaceGrid(12, 10, 10)
	if len(tags) != 12 {
		t.Fatalf("PlaceGrid returned %d tags", len(tags))
	}
	src := excite.NewWiFi11nSource()
	src.PacketRate = 200
	res, err := multiscatter.RunFleet(multiscatter.FleetConfig{
		Sources:   []excite.Source{src},
		Tags:      tags,
		Receivers: multiscatter.PlaceReceivers(1, 10, 10),
		Span:      time.Second,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumTags != 12 || res.Events == 0 {
		t.Fatalf("fleet result: %d tags, %d events", res.NumTags, res.Events)
	}
	if res.Fairness <= 0 || res.Fairness > 1 {
		t.Fatalf("fairness out of range: %v", res.Fairness)
	}
	if len(res.Markdown()) == 0 {
		t.Fatal("empty markdown report")
	}
}
