#!/bin/sh
# Bench-regression gate: regenerate the msbench metrics and diff them
# against the latest committed BENCH_<date>.json baseline via
# internal/obs/benchdiff. Exits non-zero when a gated metric (kbps /
# accuracy) drops more than the threshold, when metrics go missing, or
# when the run settings diverge from the baseline's.
#
# Usage:
#   scripts/bench_compare.sh                 # fresh run vs latest baseline
#   scripts/bench_compare.sh NEW.json        # existing run vs latest baseline
#   scripts/bench_compare.sh NEW.json BASE.json
#
# Environment:
#   BENCH_THRESHOLD   relative drop that fails the gate (default 0.15)
#   BENCH_TRIALS      msbench -trials for a fresh run (default 30)
#   BENCH_SEED        msbench -seed for a fresh run (default 1)
set -eu
cd "$(dirname "$0")/.."

NEW="${1:-}"
BASE="${2:-}"
THRESHOLD="${BENCH_THRESHOLD:-0.15}"

if [ -z "$NEW" ]; then
    NEW="$(mktemp /tmp/msbench-metrics.XXXXXX.json)"
    trap 'rm -f "$NEW"' EXIT
    echo "== msbench: generating fresh metrics (trials=${BENCH_TRIALS:-30}, seed=${BENCH_SEED:-1})"
    go run ./cmd/msbench -trials "${BENCH_TRIALS:-30}" -seed "${BENCH_SEED:-1}" -json "$NEW" >/dev/null
fi

if [ -n "$BASE" ]; then
    go run ./internal/obs/benchdiff/cli -base "$BASE" -new "$NEW" -threshold "$THRESHOLD"
else
    go run ./internal/obs/benchdiff/cli -new "$NEW" -threshold "$THRESHOLD"
fi
