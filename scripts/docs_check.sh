#!/bin/sh
# Dead-link check for the repo's markdown docs: every intra-repo link
# target `](path)` in docs/*.md, README.md, ROADMAP.md and EXPERIMENTS.md
# must exist on disk. External links (http/https/mailto) and pure
# fragment links (#anchor) are skipped; fragments on file links are
# stripped before the existence check. Relative targets are resolved
# against the linking file's directory first, then the repo root (both
# styles appear in the docs). Exits 1 listing every dead link.
set -eu
cd "$(dirname "$0")/.."

fail=0
for md in README.md ROADMAP.md EXPERIMENTS.md docs/*.md; do
    [ -f "$md" ] || continue
    dir=$(dirname "$md")
    # One link target per line: grab every ](...) group, tolerating
    # several links on one line.
    targets=$(grep -o ']([^)]*)' "$md" 2>/dev/null | sed 's/^](//; s/)$//' || true)
    [ -n "$targets" ] || continue
    for t in $targets; do
        case "$t" in
        http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path=${t%%#*}
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
            echo "docs_check: dead link in $md -> $t" >&2
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "docs_check: FAILED" >&2
    exit 1
fi
echo "docs_check: all intra-repo links resolve"
