#!/bin/sh
# Full verification gate: build, vet, race-enabled tests, golden replay
# diff, a short overlay fuzz smoke, and the msserve end-to-end smoke
# (race-built server, byte-identical results, graceful drain). Mirrors
# `make check` for environments without make.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test -race ./..."
go test -race ./...
echo "== replay-diff (golden trace, serial vs parallel)"
go test -run TestGoldenTrace -count=1 ./internal/replay
echo "== fig15-demo (three-system occlusion comparison incl. Double-decker)"
go run ./cmd/msbench -experiment fig15
echo "== fig16-demo (concurrent multi-tag OFDM curve)"
go run ./cmd/msbench -experiment fig16
echo "== docs-check (dead intra-repo links)"
sh scripts/docs_check.sh
echo "== overlay fuzz smoke (5s)"
go test -run - -fuzz FuzzPlanInvariants -fuzztime 5s ./internal/overlay
echo "== serve smoke (msserve + msload byte-identical, race-built)"
sh scripts/serve_smoke.sh
if [ "${MS_SKIP_BENCH:-}" = "1" ]; then
    echo "== bench-compare (skipped: MS_SKIP_BENCH=1)"
else
    echo "== bench-compare (msbench metrics vs committed baseline)"
    sh scripts/bench_compare.sh
fi
echo "OK"
