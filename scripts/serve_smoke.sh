#!/bin/sh
# End-to-end smoke test for the fleet service: build msserve, msfleet and
# msload with the race detector, start the server on an ephemeral port,
# drive it with msload, and assert that every job result is byte-identical
# to a standalone msfleet run with the same (seed, config). Finishes by
# checking graceful SIGTERM drain (exit 0).
#
# Knobs (env): MS_SMOKE_JOBS (default 6), MS_SMOKE_SEED (default 7).
# MS_SMOKE_ARTIFACTS, when set to a directory, receives a telemetry
# snapshot (prom.txt, healthz.json, history.json, spans.json) captured
# from the live server — CI uploads it as a build artifact.
set -eu
cd "$(dirname "$0")/.."

JOBS="${MS_SMOKE_JOBS:-6}"
SEED="${MS_SMOKE_SEED:-7}"
SCENARIO=home
TAGS=8
FLOOR=12x18
SPAN=2s

WORK="$(mktemp -d "${TMPDIR:-/tmp}/msserve-smoke.XXXXXX")"
SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== build (race) msserve msfleet msload"
go build -race -o "$WORK" ./cmd/msserve ./cmd/msfleet ./cmd/msload

echo "== golden msfleet runs (seeds $SEED..$((SEED + JOBS - 1)))"
i=0
while [ "$i" -lt "$JOBS" ]; do
    s=$((SEED + i))
    "$WORK/msfleet" -scenario "$SCENARIO" -tags "$TAGS" -floor "$FLOOR" \
        -span "$SPAN" -seed "$s" -json "$WORK/golden-seed$s.json" > /dev/null
    i=$((i + 1))
done

echo "== start msserve on an ephemeral port"
"$WORK/msserve" -addr 127.0.0.1:0 -addr-file "$WORK/addr" -pool 2 &
SRV_PID=$!
i=0
while [ ! -s "$WORK/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve_smoke: msserve never published its address" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR="$(cat "$WORK/addr")"
echo "   msserve at $ADDR"

echo "== msload: $JOBS concurrent jobs"
"$WORK/msload" -server "$ADDR" -jobs "$JOBS" -concurrency "$JOBS" \
    -scenario "$SCENARIO" -tags "$TAGS" -floor "$FLOOR" -span "$SPAN" \
    -seed "$SEED" -out "$WORK/out"

echo "== byte-identical check: service results vs msfleet -json"
i=0
while [ "$i" -lt "$JOBS" ]; do
    s=$((SEED + i))
    cmp "$WORK/golden-seed$s.json" "$WORK/out/job-seed$s.json"
    i=$((i + 1))
done
echo "   $JOBS/$JOBS results byte-identical"

echo "== API surface"
curl -sf "http://$ADDR/healthz" > /dev/null
curl -sf "http://$ADDR/jobs" > /dev/null
curl -sf "http://$ADDR/metrics" > /dev/null
curl -sf "http://$ADDR/metrics/jobs" > /dev/null
curl -sf "http://$ADDR/obs/metrics" > /dev/null

echo "== telemetry snapshot (prom, healthz, history, spans)"
curl -sf "http://$ADDR/metrics/prom" > "$WORK/prom.txt"
curl -sf "http://$ADDR/healthz" > "$WORK/healthz.json"
curl -sf "http://$ADDR/metrics/history" > "$WORK/history.json"
curl -sf "http://$ADDR/jobs/job-1/spans" > "$WORK/spans.json"
grep -q "^serve_jobs_done_total $JOBS\$" "$WORK/prom.txt"
grep -q "serve_latency_e2e_ms_bucket" "$WORK/prom.txt"
grep -q "runtime_goroutines" "$WORK/prom.txt"
grep -q '"status": "ok"' "$WORK/healthz.json"
grep -q '"jobs_done": '"$JOBS" "$WORK/healthz.json"
grep -q '"serve.jobs_running"' "$WORK/history.json"
grep -q '"name": "job"' "$WORK/spans.json"
grep -q '"state": "done"' "$WORK/spans.json"
if [ -n "${MS_SMOKE_ARTIFACTS:-}" ]; then
    mkdir -p "$MS_SMOKE_ARTIFACTS"
    cp "$WORK/prom.txt" "$WORK/healthz.json" "$WORK/history.json" \
        "$WORK/spans.json" "$MS_SMOKE_ARTIFACTS/"
    echo "   telemetry snapshot copied to $MS_SMOKE_ARTIFACTS"
fi

echo "== graceful drain on SIGTERM"
kill -TERM "$SRV_PID"
rc=0
wait "$SRV_PID" || rc=$?
SRV_PID=""
if [ "$rc" -ne 0 ]; then
    echo "serve_smoke: msserve exited $rc on SIGTERM (want 0)" >&2
    exit 1
fi
echo "serve smoke OK"
