#!/bin/sh
# End-to-end smoke test for the fleet service: build msserve, msfleet and
# msload with the race detector, start the server on an ephemeral port,
# drive it with msload, and assert that every job result is byte-identical
# to a standalone msfleet run with the same (seed, config). Finishes by
# checking graceful SIGTERM drain (exit 0).
#
# Knobs (env): MS_SMOKE_JOBS (default 6), MS_SMOKE_SEED (default 7).
set -eu
cd "$(dirname "$0")/.."

JOBS="${MS_SMOKE_JOBS:-6}"
SEED="${MS_SMOKE_SEED:-7}"
SCENARIO=home
TAGS=8
FLOOR=12x18
SPAN=2s

WORK="$(mktemp -d "${TMPDIR:-/tmp}/msserve-smoke.XXXXXX")"
SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== build (race) msserve msfleet msload"
go build -race -o "$WORK" ./cmd/msserve ./cmd/msfleet ./cmd/msload

echo "== golden msfleet runs (seeds $SEED..$((SEED + JOBS - 1)))"
i=0
while [ "$i" -lt "$JOBS" ]; do
    s=$((SEED + i))
    "$WORK/msfleet" -scenario "$SCENARIO" -tags "$TAGS" -floor "$FLOOR" \
        -span "$SPAN" -seed "$s" -json "$WORK/golden-seed$s.json" > /dev/null
    i=$((i + 1))
done

echo "== start msserve on an ephemeral port"
"$WORK/msserve" -addr 127.0.0.1:0 -addr-file "$WORK/addr" -pool 2 &
SRV_PID=$!
i=0
while [ ! -s "$WORK/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve_smoke: msserve never published its address" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR="$(cat "$WORK/addr")"
echo "   msserve at $ADDR"

echo "== msload: $JOBS concurrent jobs"
"$WORK/msload" -server "$ADDR" -jobs "$JOBS" -concurrency "$JOBS" \
    -scenario "$SCENARIO" -tags "$TAGS" -floor "$FLOOR" -span "$SPAN" \
    -seed "$SEED" -out "$WORK/out"

echo "== byte-identical check: service results vs msfleet -json"
i=0
while [ "$i" -lt "$JOBS" ]; do
    s=$((SEED + i))
    cmp "$WORK/golden-seed$s.json" "$WORK/out/job-seed$s.json"
    i=$((i + 1))
done
echo "   $JOBS/$JOBS results byte-identical"

echo "== API surface"
curl -sf "http://$ADDR/healthz" > /dev/null
curl -sf "http://$ADDR/jobs" > /dev/null
curl -sf "http://$ADDR/metrics/jobs" > /dev/null
curl -sf "http://$ADDR/obs/metrics" > /dev/null

echo "== graceful drain on SIGTERM"
kill -TERM "$SRV_PID"
rc=0
wait "$SRV_PID" || rc=$?
SRV_PID=""
if [ "$rc" -ne 0 ]; then
    echo "serve_smoke: msserve exited $rc on SIGTERM (want 0)" >&2
    exit 1
fi
echo "serve smoke OK"
