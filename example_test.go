package multiscatter_test

import (
	"fmt"

	"multiscatter"
)

// ExampleNewPlan shows the overlay sequence structure for a BLE carrier
// in mode 1.
func ExampleNewPlan() {
	plan, err := multiscatter.NewPlan(multiscatter.ProtocolBLE, multiscatter.Mode1, []byte{1, 0, 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("κ=%d γ=%d sequences=%d tag-capacity=%d\n",
		plan.Kappa, plan.Gamma, plan.Sequences, plan.TagCapacity())
	// Output: κ=8 γ=4 sequences=3 tag-capacity=3
}

// ExampleNewCodec runs the complete overlay pipeline: build a carrier,
// modulate tag data, decode both streams with one receiver.
func ExampleNewCodec() {
	codec, _ := multiscatter.NewCodec(multiscatter.ProtocolZigBee)
	plan, _ := multiscatter.NewPlan(multiscatter.ProtocolZigBee, multiscatter.Mode1, []byte{1, 0, 1, 1})
	carrier, _ := codec.Build(plan)
	codec.ApplyTag(carrier, []byte{0, 1, 1, 0})
	result, _ := codec.Decode(carrier)
	fmt.Println("productive:", result.Productive)
	fmt.Println("tag:       ", result.Tag)
	// Output:
	// productive: [1 0 1 1]
	// tag:        [0 1 1 0]
}

// ExampleSelectCarrier shows the Figure 18b carrier-selection policy.
func ExampleSelectCarrier() {
	goodputs := map[multiscatter.Protocol]float64{
		multiscatter.Protocol80211b: 2.0,
		multiscatter.Protocol80211n: 20.0,
	}
	picked, ok := multiscatter.SelectCarrier(goodputs, multiscatter.BraceletGoodputKbps)
	fmt.Printf("picked %v, requirement met: %v\n", picked, ok)
	// Output: picked 802.11n, requirement met: true
}

// ExampleNewLink reads the calibrated LoS link at the paper's deployment
// point.
func ExampleNewLink() {
	link := multiscatter.NewLink(multiscatter.Protocol80211b, multiscatter.NewLoSChannel())
	fmt.Printf("RSSI at 10 m: %.1f dBm\n", link.RSSI(10))
	fmt.Printf("in range at 25 m: %v, at 35 m: %v\n", link.InRange(25), link.InRange(35))
	// Output:
	// RSSI at 10 m: -76.2 dBm
	// in range at 25 m: true, at 35 m: false
}
