package multiscatter_test

import (
	"multiscatter/internal/analog"
	"multiscatter/internal/channel"
	"multiscatter/internal/core"
	"multiscatter/internal/dsp"
	"multiscatter/internal/phy/dsss"
	"multiscatter/internal/radio"
)

// fig4Result summarizes the rectifier comparison of Figure 4.
type fig4Result struct {
	// clampBoost is the clamped rectifier's mean output over the basic
	// rectifier's for the same input.
	clampBoost float64
	// oursFidelity / wispFidelity are envelope-tracking correlations on
	// an 802.11b input.
	oursFidelity, wispFidelity float64
}

// runFig4 reruns the rectifier comparison.
func runFig4() fig4Result {
	const rate = 22e6
	env := make([]float64, 2200)
	for i := range env {
		if (i/110)%2 == 0 {
			env[i] = 0.3
		}
	}
	basic := analog.NewBasicRectifier().Detect(env, rate)
	clamped := analog.NewMultiscatterRectifier().Detect(env, rate)
	boost := dsp.MeanFloat(clamped) / maxFloat(dsp.MeanFloat(basic), 1e-9)

	mod := dsss.NewModulator(dsss.Config{Rate: dsss.Rate1Mbps})
	w, _ := mod.Modulate(radio.Packet{Payload: []byte{0xA5, 0x5A, 0x3C}})
	sig := dsp.Envelope(w.IQ)
	for i := range sig {
		if (i/22)%2 == 1 {
			sig[i] *= 0.2
		}
		sig[i] *= 0.4
	}
	ours := analog.NewMultiscatterRectifier().Detect(sig, w.Rate)
	wisp := analog.NewWISPRectifier().Detect(sig, w.Rate)
	ref := dsp.RemoveDC(dsp.CloneFloat(sig))
	return fig4Result{
		clampBoost:   boost,
		oursFidelity: dsp.NormCorrFloat(dsp.RemoveDC(dsp.CloneFloat(ours)), ref),
		wispFidelity: dsp.NormCorrFloat(dsp.RemoveDC(dsp.CloneFloat(wisp)), ref),
	}
}

// runDownlink reruns the §2.2.1 downlink-range measurement.
func runDownlink() float64 {
	return core.DownlinkRange(analog.NewMultiscatterRectifier(), channel.NewLoS())
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
