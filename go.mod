module multiscatter

go 1.22
